// Package tensor implements the dense row-major float64 matrices that the
// pure-Go GNN training engine is built on. It provides exactly the
// operations forward/backward passes need — matmul in the three layouts
// (AB, AᵀB, ABᵀ), broadcast bias, elementwise maps, row gather/scatter —
// and nothing speculative.
//
// Every hot kernel has an Into variant that reuses caller storage (see
// Workspace for the arena that feeds them) and is sharded across the
// package worker pool (see SetParallelism). Sharding is always over
// disjoint output ranges with a fixed per-element accumulation order, so
// a kernel's result is bitwise-identical at any parallelism level.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Shard grains: the minimum per-shard iteration count worth dispatching
// to the pool, sized so dispatch overhead (~1µs) stays well under shard
// work.
const (
	rowGrain  = 8    // matmul-class rows
	flatGrain = 4096 // elementwise scalar ops
	copyGrain = 64   // row copies (gather)
)

// Dense is a row-major Rows x Cols matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows x Cols matrix.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyInto makes dst a copy of m, reusing dst's storage (shapes must
// match).
func (m *Dense) CopyInto(dst *Dense) {
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic("tensor: CopyInto shape mismatch")
	}
	copy(dst.Data, m.Data)
}

// Row returns row i (aliases storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Zero clears all elements in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// GlorotInit fills m with Glorot/Xavier-uniform values for a layer with
// fanIn inputs and fanOut outputs.
func (m *Dense) GlorotInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MatMul returns a·b (a: n×k, b: k×m → n×m).
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage, sharded over
// output rows.
//
// The inner loop is branch-free: the seed implementation skipped
// aik == 0 terms, but on dense inputs the never-firing compare costs
// ~6% (BenchmarkMatMulSkipDense 9.56ms vs BenchmarkMatMul256 9.01ms,
// 256³ serial) for zero benefit. The skip only pays on provably sparse
// inputs — post-ReLU/dropout activations, where ~half the entries are
// exact zeros and it buys ~1.8x (BenchmarkMatMulSkipSparse 5.12ms) —
// so it lives in MatMulSparseInto and the nn layers that own such
// inputs opt in explicitly.
func MatMulInto(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %dx%d = %dx%d · %dx%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	parallelFor(a.Rows, rowGrain, func(lo, hi int) {
		// i-k-j loop order streams b's rows, which is cache-friendly for
		// row-major storage.
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k := 0; k < a.Cols; k++ {
				aik := arow[k]
				brow := b.Row(k)
				for j := range brow {
					orow[j] += aik * brow[j]
				}
			}
		}
	})
}

// MatMulSparseInto is MatMulInto with the zero-skip kept: rows of a with
// exact-zero entries (post-ReLU or post-dropout activations) skip the
// whole k-th row of b. On dense inputs prefer MatMulInto. Skipped terms
// contribute exactly 0 for finite inputs, so results match MatMulInto
// bit-for-bit away from ±Inf/NaN.
func MatMulSparseInto(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulSparseInto shape mismatch %dx%d = %dx%d · %dx%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	parallelFor(a.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k := 0; k < a.Cols; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range brow {
					orow[j] += aik * brow[j]
				}
			}
		}
	})
}

// MatMulT1 returns aᵀ·b (a: k×n, b: k×m → n×m). Used for dW = Xᵀ·dY.
func MatMulT1(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1 shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	MatMulT1Into(out, a, b)
	return out
}

// MatMulT1Into computes out = aᵀ·b, sharded over output rows (columns of
// a); each output row accumulates over k in ascending order, matching the
// serial result exactly. Branch-free like MatMulInto: a is the layer's
// cached forward input, which for aggregate-fed layers (GCN, the SAGE
// neighbor path) and raw features is dense. Layers whose input is
// provably sparse use MatMulT1SparseInto (see nn.Linear.SparseInput).
func MatMulT1Into(out, a, b *Dense) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT1 shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	parallelFor(a.Cols, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k := 0; k < a.Rows; k++ {
				aki := a.Data[k*a.Cols+i]
				brow := b.Row(k)
				for j := range brow {
					orow[j] += aki * brow[j]
				}
			}
		}
	})
}

// MatMulT1SparseInto is MatMulT1Into with the zero-skip kept: each
// exact-zero entry of a (post-ReLU/dropout activations) skips a whole
// m-length inner loop. On dense inputs prefer MatMulT1Into.
func MatMulT1SparseInto(out, a, b *Dense) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT1SparseInto shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	parallelFor(a.Cols, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k := 0; k < a.Rows; k++ {
				aki := a.Data[k*a.Cols+i]
				if aki == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range brow {
					orow[j] += aki * brow[j]
				}
			}
		}
	})
}

// MatMulT2 returns a·bᵀ (a: n×k, b: m×k → n×m). Used for dX = dY·Wᵀ.
func MatMulT2(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2 shape mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	MatMulT2Into(out, a, b)
	return out
}

// MatMulT2Into computes out = a·bᵀ, sharded over output rows.
func MatMulT2Into(out, a, b *Dense) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT2 shape mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	parallelFor(a.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
}

// AddBias adds row vector bias (1×Cols) to every row of m, in place.
func (m *Dense) AddBias(bias []float64) {
	if len(bias) != m.Cols {
		panic("tensor: AddBias length mismatch")
	}
	parallelFor(m.Rows, copyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
	})
}

// AddInPlace computes m += other.
func (m *Dense) AddInPlace(other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	parallelFor(len(m.Data), flatGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Data[i] += other.Data[i]
		}
	})
}

// ScaleInPlace computes m *= s.
func (m *Dense) ScaleInPlace(s float64) {
	parallelFor(len(m.Data), flatGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Data[i] *= s
		}
	})
}

// Apply maps f over every element, in place. f must be pure: it is
// invoked concurrently from the worker pool.
func (m *Dense) Apply(f func(float64) float64) {
	parallelFor(len(m.Data), flatGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Data[i] = f(m.Data[i])
		}
	})
}

// ColSums returns the per-column sums (length Cols). Used for bias grads.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.Cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto accumulates per-column sums into dst (dst is overwritten).
// Both paths accumulate each column top-to-bottom, so they are bitwise
// equivalent: the serial path streams rows (cache-optimal, the seed's
// access pattern), while the parallel path shards over column ranges —
// strided reads, but each worker owns a disjoint slice of dst.
func (m *Dense) ColSumsInto(dst []float64) {
	if len(dst) != m.Cols {
		panic("tensor: ColSumsInto length mismatch")
	}
	if Parallelism() <= 1 || m.Cols < 2*rowGrain {
		for j := range dst {
			dst[j] = 0
		}
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j, v := range row {
				dst[j] += v
			}
		}
		return
	}
	parallelFor(m.Cols, rowGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for i := 0; i < m.Rows; i++ {
				s += m.Data[i*m.Cols+j]
			}
			dst[j] = s
		}
	})
}

// GatherRows returns the matrix whose row i is m.Row(idx[i]).
func GatherRows(m *Dense, idx []int32) *Dense {
	out := New(len(idx), m.Cols)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto copies m.Row(idx[i]) into out.Row(i), sharded over idx.
func GatherRowsInto(out, m *Dense, idx []int32) {
	if out.Rows != len(idx) || out.Cols != m.Cols {
		panic("tensor: GatherRowsInto shape mismatch")
	}
	parallelFor(len(idx), copyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), m.Row(int(idx[i])))
		}
	})
}

// ScatterAddRows adds src.Row(i) into dst.Row(idx[i]) for all i. idx may
// repeat rows, so the parallel path shards over destination-row ranges
// and lets every shard scan the full index list, touching only its own
// rows — write-race free, and each destination row accumulates in the
// same i order as the serial loop (bitwise-identical partial merge).
func ScatterAddRows(dst, src *Dense, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	// The volume gate keeps small scatters serial; the row gate keeps
	// them serial when dst has too few rows to amortize each shard's
	// full scan of idx.
	if Parallelism() <= 1 || len(idx)*src.Cols < 4*flatGrain || dst.Rows < 2*rowGrain {
		for i, r := range idx {
			drow := dst.Row(int(r))
			srow := src.Row(i)
			for j := range drow {
				drow[j] += srow[j]
			}
		}
		return
	}
	parallelFor(dst.Rows, 1, func(lo, hi int) {
		for i, r := range idx {
			if int(r) < lo || int(r) >= hi {
				continue
			}
			drow := dst.Row(int(r))
			srow := src.Row(i)
			for j := range drow {
				drow[j] += srow[j]
			}
		}
	})
}

// SoftmaxRows applies a numerically stable softmax to each row, in place.
func (m *Dense) SoftmaxRows() {
	parallelFor(m.Rows, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			max := math.Inf(-1)
			for _, v := range row {
				if v > max {
					max = v
				}
			}
			var sum float64
			for j, v := range row {
				e := math.Exp(v - max)
				row[j] = e
				sum += e
			}
			for j := range row {
				row[j] /= sum
			}
		}
	})
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func (m *Dense) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestJ := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = bestJ
	}
	return out
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
