package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// naive computes aᵀ·b or a·bᵀ the slow obvious way to cross-check the
// optimized kernels.
func naiveT1(a, b *Dense) *Dense {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveT2(a, b *Dense) *Dense {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatMulTransposedAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k, n, m := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomDense(rng, k, n)
		b := randomDense(rng, k, m)
		got := MatMulT1(a, b)
		want := naiveT1(a, b)
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		c := randomDense(rng, n, k)
		d := randomDense(rng, m, k)
		got2 := MatMulT2(c, d)
		want2 := naiveT2(c, d)
		for i := range got2.Data {
			if math.Abs(got2.Data[i]-want2.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// (A·B)ᵀ == Bᵀ·Aᵀ is exercised indirectly: MatMulT1(A, I) must equal Aᵀ.
func TestMatMulT1Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 4, 3)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(i, i, 1)
	}
	at := MatMulT1(a, eye) // aᵀ·I = aᵀ, shape 3x4
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if !almostEq(at.At(i, j), a.At(j, i)) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddBiasAndColSums(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	m.AddBias([]float64{10, 20, 30})
	want := []float64{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if !almostEq(m.Data[i], w) {
			t.Fatalf("AddBias[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	sums := m.ColSums()
	if !almostEq(sums[0], 25) || !almostEq(sums[1], 47) || !almostEq(sums[2], 69) {
		t.Errorf("ColSums = %v", sums)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomDense(rng, 6, 4)
	idx := []int32{5, 0, 3}
	g := GatherRows(m, idx)
	if g.Rows != 3 || g.Cols != 4 {
		t.Fatalf("gather shape %dx%d", g.Rows, g.Cols)
	}
	for i, r := range idx {
		for j := 0; j < 4; j++ {
			if !almostEq(g.At(i, j), m.At(int(r), j)) {
				t.Fatalf("gather mismatch at row %d", i)
			}
		}
	}
	dst := New(6, 4)
	ScatterAddRows(dst, g, idx)
	ScatterAddRows(dst, g, idx)
	for i, r := range idx {
		for j := 0; j < 4; j++ {
			if !almostEq(dst.At(int(r), j), 2*g.At(i, j)) {
				t.Fatalf("scatter mismatch at row %d", i)
			}
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{0, 0, 0, 1000, 1000, 1000})
	m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := m.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax value %v out of range (row %d)", v, i)
			}
			sum += v
		}
		if !almostEq(sum, 1) {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxRowsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomDense(rng, 1+rng.Intn(5), 1+rng.Intn(6))
		m.ScaleInPlace(50) // stress stability
		m.SoftmaxRows()
		for i := 0; i < m.Rows; i++ {
			var sum float64
			for _, v := range m.Row(i) {
				if math.IsNaN(v) || v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 9, 2, 7, 0, 3})
	am := m.ArgmaxRows()
	if am[0] != 1 || am[1] != 0 {
		t.Errorf("ArgmaxRows = %v, want [1 0]", am)
	}
}

func TestGlorotInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(32, 32)
	m.GlorotInit(rng, 32, 32)
	limit := math.Sqrt(6.0 / 64.0)
	var nonzero int
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Glorot value %v exceeds limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 1000 {
		t.Error("GlorotInit left most entries zero")
	}
}

func TestApplyScaleAdd(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 2})
	m.Apply(func(v float64) float64 { return math.Max(0, v) })
	if m.Data[0] != 0 || m.Data[2] != 2 {
		t.Errorf("Apply relu = %v", m.Data)
	}
	m.ScaleInPlace(3)
	if m.Data[2] != 6 {
		t.Errorf("ScaleInPlace = %v", m.Data)
	}
	m.AddInPlace(FromSlice(1, 3, []float64{1, 1, 1}))
	if m.Data[0] != 1 || m.Data[2] != 7 {
		t.Errorf("AddInPlace = %v", m.Data)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if !almostEq(m.FrobeniusNorm(), 5) {
		t.Errorf("FrobeniusNorm = %v, want 5", m.FrobeniusNorm())
	}
}
