package tensor

import "sync"

// Workspace is an arena of reusable Dense buffers backed by sync.Pool,
// keyed by power-of-two capacity buckets so the size-varying
// intermediates of sampled mini-batches (DstCount and srcRows differ
// every batch) still reuse each other's storage, and the pool-key space
// stays logarithmic. Steady-state forward/backward passes stop
// allocating. The intended lifecycle is per training iteration:
//
//	buf := ws.Get(r, c)   // contents undefined; zero if you accumulate
//	...
//	ws.Put(buf)           // optional early return
//	ws.ReleaseAll()       // end of iteration: recycle everything handed out
//
// A buffer obtained from Get stays valid until it is Put or ReleaseAll is
// called, so layers may cache pointers to intermediates across
// forward/backward within one iteration. A nil *Workspace is valid and
// degrades to plain allocation (Get == New, Put/ReleaseAll are no-ops),
// which keeps non-hot-path callers and old tests unchanged.
//
// Workspace methods are mutex-guarded so kernels running on the worker
// pool may Get scratch, but the arena is designed for one training loop,
// not for sharing across concurrent runs.
//
// sync.Pool backing means the GC may trim idle buffers (its victim
// cache keeps them for one extra cycle, so per-iteration reuse between
// collections is unaffected — the epoch benchmarks confirm steady-state
// allocs stay flat). The trade: the arena never pins memory an idle run
// no longer needs.
type Workspace struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool
	inUse []*Dense
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{pools: make(map[int]*sync.Pool)}
}

// bucketFor rounds n up to the pool's power-of-two size class.
func bucketFor(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// Get returns a rows x cols matrix whose contents are undefined. The
// buffer is tracked as in-use until Put or ReleaseAll.
func (ws *Workspace) Get(rows, cols int) *Dense {
	if ws == nil {
		return New(rows, cols)
	}
	n := rows * cols
	bucket := bucketFor(n)
	ws.mu.Lock()
	pool, ok := ws.pools[bucket]
	if !ok {
		pool = &sync.Pool{}
		ws.pools[bucket] = pool
	}
	var m *Dense
	if v := pool.Get(); v != nil {
		m = v.(*Dense)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
	} else {
		m = &Dense{Rows: rows, Cols: cols, Data: make([]float64, n, bucket)}
	}
	ws.inUse = append(ws.inUse, m)
	ws.mu.Unlock()
	return m
}

// GetZeroed returns a rows x cols matrix with every element cleared.
func (ws *Workspace) GetZeroed(rows, cols int) *Dense {
	m := ws.Get(rows, cols)
	m.Zero()
	return m
}

// Put returns m to the arena ahead of ReleaseAll. Buffers not obtained
// from this workspace are ignored.
func (ws *Workspace) Put(m *Dense) {
	if ws == nil || m == nil {
		return
	}
	ws.mu.Lock()
	for i, u := range ws.inUse {
		if u == m {
			last := len(ws.inUse) - 1
			ws.inUse[i] = ws.inUse[last]
			ws.inUse[last] = nil
			ws.inUse = ws.inUse[:last]
			ws.pools[cap(m.Data)].Put(m)
			break
		}
	}
	ws.mu.Unlock()
}

// ReleaseAll recycles every buffer handed out since the last release.
// Callers must not touch previously Get-ed buffers afterwards.
func (ws *Workspace) ReleaseAll() {
	if ws == nil {
		return
	}
	ws.mu.Lock()
	for i, m := range ws.inUse {
		ws.pools[cap(m.Data)].Put(m)
		ws.inUse[i] = nil
	}
	ws.inUse = ws.inUse[:0]
	ws.mu.Unlock()
}

// InUse reports how many buffers are currently handed out (test hook).
func (ws *Workspace) InUse() int {
	if ws == nil {
		return 0
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.inUse)
}

// Grow returns buf with length n, reusing its capacity and reallocating
// only when it is insufficient. Contents are unspecified: callers must
// overwrite every element they read. Shared helper for the scratch
// buffers layers and samplers keep across iterations.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
